// rcoe-cluster drives the sharded RCoE key-value cluster: N
// independently replicated nodes behind a consistent-hash router,
// serving a multi-stream YCSB workload.
//
// Usage:
//
//	rcoe-cluster run [-shards N] [-mode base|lc|cc] [-replicas N]
//	                 [-masking] [-vnodes N] [-workload a-f] [-records N]
//	                 [-ops N] [-streams N] [-window N] [-hot F] [-seed N]
//	                 [-shard-workers N] [-pipeline K]
//	                 [-cpuprofile FILE] [-memprofile FILE]
//	                 [-json] [-out FILE]
//	rcoe-cluster bench [-shards N] [-vnodes N] [-workload a-f]
//	                   [-records N] [-ops N] [-streams N] [-seed N]
//	                   [-shard-workers N] [-pipeline K] [-parallel N]
//	                   [-cpuprofile FILE] [-memprofile FILE]
//	                   [-json] [-out FILE] [-quiet]
//	rcoe-cluster failover [-shards N] [-mode lc|cc] [-replicas N]
//	                      [-masking] [-victim N] [-kill-after N]
//	                      [-rolling] [-ckpt-rounds N] [-records N]
//	                      [-ops N] [-seed N] [-shard-workers N]
//	                      [-cpuprofile FILE] [-memprofile FILE]
//	                      [-json] [-out FILE]
//
// run executes one cluster configuration end to end (preload, run
// phase, acknowledged-write audit) and reports fleet and per-shard
// results. bench sweeps the standard configurations (base, LC-DMR,
// masking LC-TMR) over the same cluster shape, fanning rows across host
// workers — worker count never changes the artifact. failover is the
// crash-and-replace drill: it kills the victim shard's node mid-run,
// transfers state to a fresh node (checkpoint restore plus acked-write
// replay), finishes the run, and audits that no acknowledged write was
// lost; -rolling rolls the drill through every shard.
//
// -shard-workers bounds the host goroutines advancing shard nodes
// concurrently inside each lockstep round (0 = all cores, 1 = serial);
// artifacts are byte-identical at any setting. -pipeline K lets each
// client stream keep up to K operations in flight back to back instead
// of strict per-op round-robin.
//
// -json emits a structured rcoe-cluster/v1 artifact (no host timings,
// byte-reproducible); -out writes the artifact to a file, with the
// path's writability checked before the campaign runs.
// -cpuprofile/-memprofile write pprof profiles of the run (parity with
// rcoe-bench) — the way the per-round router overhead is attributed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"rcoe/internal/cluster"
	"rcoe/internal/core"
	"rcoe/internal/exp"
	"rcoe/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			return runOne(os.Args[2:])
		case "bench":
			return runBench(os.Args[2:])
		case "failover":
			return runFailover(os.Args[2:])
		}
	}
	fmt.Fprintln(os.Stderr, "usage: rcoe-cluster run|bench|failover [flags]")
	return 2
}

// clusterFlags registers the flags every subcommand shares and returns
// a builder that assembles cluster.Options after parsing.
func clusterFlags(fs *flag.FlagSet) func() (cluster.Options, error) {
	shards := fs.Int("shards", 4, "shard (node) count")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
	wl := fs.String("workload", "b", "YCSB workload mix: a-f")
	records := fs.Uint64("records", 64, "cluster-wide preloaded records")
	ops := fs.Uint64("ops", 200, "total run-phase operations across streams")
	streams := fs.Int("streams", 0, "client streams (0 = one per shard)")
	window := fs.Int("window", 0, "per-shard outstanding window (0 = default)")
	hot := fs.Float64("hot", 0, "fraction of operations redirected to a single hot key")
	seed := fs.Uint64("seed", 1, "cluster seed")
	ckptRounds := fs.Uint64("ckpt-rounds", 0, "checkpoint every shard every N rounds (0 = off)")
	shardWorkers := fs.Int("shard-workers", 0, "host goroutines advancing shards per round (0 = all cores, 1 = serial)")
	pipeline := fs.Int("pipeline", 1, "consecutive ops drawn per client stream per scheduler visit")
	return func() (cluster.Options, error) {
		kind, err := parseWorkload(*wl)
		if err != nil {
			return cluster.Options{}, err
		}
		return cluster.Options{
			Shards: *shards, VNodes: *vnodes, Workload: kind,
			Records: *records, Operations: *ops, Streams: *streams,
			Window: *window, HotKeyFraction: *hot, Seed: *seed,
			CheckpointRounds: *ckptRounds,
			ShardWorkers:     *shardWorkers, Pipeline: *pipeline,
		}, nil
	}
}

// profileFlags registers -cpuprofile/-memprofile (parity with
// rcoe-bench) and returns start/stop hooks bracketing the campaign.
func profileFlags(fs *flag.FlagSet) (start func() error, stop func() error) {
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to FILE")
	memProfile := fs.String("memprofile", "", "write a heap profile to FILE at exit")
	start = func() error {
		if *cpuProfile == "" {
			return nil
		}
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		return pprof.StartCPUProfile(f)
	}
	stop = func() error {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile == "" {
			return nil
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		return pprof.WriteHeapProfile(f)
	}
	return start, stop
}

// systemFlags registers the per-shard replication flags.
func systemFlags(fs *flag.FlagSet) func() (core.Config, error) {
	mode := fs.String("mode", "lc", "replication mode: base, lc or cc")
	replicas := fs.Int("replicas", 2, "replicas per shard (1 for base, 2-3 otherwise)")
	masking := fs.Bool("masking", false, "enable TMR->DMR masking downgrade (requires -replicas 3)")
	return func() (core.Config, error) {
		cfg := core.Config{Replicas: *replicas, TickCycles: 50_000}
		switch *mode {
		case "base":
			cfg.Mode = core.ModeNone
			cfg.Replicas = 1
		case "lc":
			cfg.Mode = core.ModeLC
		case "cc":
			cfg.Mode = core.ModeCC
		default:
			return cfg, fmt.Errorf("unknown mode %q", *mode)
		}
		cfg.Masking = *masking
		if cfg.Masking {
			cfg.BarrierTimeout = 2_000_000
		}
		return cfg, nil
	}
}

func parseWorkload(s string) (workload.Kind, error) {
	for _, k := range workload.AllKinds() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown workload %q (want a-f)", s)
}

func preflightOut(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

func writeArtifact(path string, data []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func emit(art *cluster.Artifact, jsonOut bool, outFile string) int {
	var data []byte
	if jsonOut {
		var err error
		data, err = json.MarshalIndent(art, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcoe-cluster: %v\n", err)
			return 1
		}
		data = append(data, '\n')
	} else {
		data = []byte(renderText(art))
	}
	if err := writeArtifact(outFile, data); err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster: %v\n", err)
		return 1
	}
	return 0
}

// renderText renders the artifact as the timing-free text report.
func renderText(art *cluster.Artifact) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d shards (%d vnodes), YCSB-%s, %d records, %d ops, %d streams\n",
		art.Campaign, art.Shards, art.VNodes, art.Workload,
		art.Records, art.Operations, art.Streams)
	for _, row := range art.Rows {
		if row.Err != "" {
			fmt.Fprintf(&sb, "%-10s ERROR: %s\n", row.Config, row.Err)
			continue
		}
		r := row.Result
		fmt.Fprintf(&sb, "%-10s ops %-6d tput %8.2f ops/Mcycle  errors %d  corrupt %d  acked %d  lost %d\n",
			row.Config, r.Ops, r.Throughput, r.Errors, r.Corruptions,
			r.AckedWrites, r.LostWrites)
		for _, s := range r.Shards {
			fmt.Fprintf(&sb, "  shard %d: ops %-5d responses %-6d alive %d failovers %d detections %d",
				s.ID, s.Ops, s.Responses, s.Alive, s.Failovers, s.Detections)
			if s.Halted {
				fmt.Fprintf(&sb, " HALTED (%s)", s.HaltReason)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func runOne(args []string) int {
	fs := flag.NewFlagSet("rcoe-cluster run", flag.ExitOnError)
	baseFn := clusterFlags(fs)
	sysFn := systemFlags(fs)
	profStart, profStop := profileFlags(fs)
	jsonOut := fs.Bool("json", false, "emit the rcoe-cluster/v1 JSON artifact")
	outFile := fs.String("out", "", "write the artifact (text or JSON) to FILE")
	_ = fs.Parse(args)

	opts, err := baseFn()
	if err == nil {
		opts.System, err = sysFn()
	}
	if err == nil {
		err = preflightOut(*outFile)
	}
	if err == nil {
		err = profStart()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster run: %v\n", err)
		return 2
	}
	art, err := cluster.RunArtifact(opts)
	if perr := profStop(); perr != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster run: %v\n", perr)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster run: %v\n", err)
		return 1
	}
	return emit(art, *jsonOut, *outFile)
}

func runBench(args []string) int {
	fs := flag.NewFlagSet("rcoe-cluster bench", flag.ExitOnError)
	baseFn := clusterFlags(fs)
	parallel := fs.Int("parallel", 0, "host workers for the experiment engine (0 = all cores)")
	profStart, profStop := profileFlags(fs)
	jsonOut := fs.Bool("json", false, "emit the rcoe-cluster/v1 JSON artifact")
	outFile := fs.String("out", "", "write the artifact (text or JSON) to FILE")
	quiet := fs.Bool("quiet", false, "suppress the progress log")
	_ = fs.Parse(args)
	exp.SetDefaultWorkers(*parallel)

	opts, err := baseFn()
	if err == nil {
		err = preflightOut(*outFile)
	}
	if err == nil {
		err = profStart()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster bench: %v\n", err)
		return 2
	}
	bopts := cluster.BenchOptions{Base: opts}
	if !*quiet {
		bopts.OnProgress = func(p exp.Progress) {
			fmt.Fprintf(os.Stderr, "rcoe-cluster bench: %-8s done (%d/%d)\n", p.Name, p.Done, p.Total)
		}
	}
	art, err := cluster.Bench(bopts)
	if perr := profStop(); perr != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster bench: %v\n", perr)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster bench: %v\n", err)
		return 1
	}
	return emit(art, *jsonOut, *outFile)
}

func runFailover(args []string) int {
	fs := flag.NewFlagSet("rcoe-cluster failover", flag.ExitOnError)
	baseFn := clusterFlags(fs)
	sysFn := systemFlags(fs)
	profStart, profStop := profileFlags(fs)
	victim := fs.Int("victim", 0, "shard to kill")
	killAfter := fs.Uint64("kill-after", 20, "kill the victim after this many completed operations")
	rolling := fs.Bool("rolling", false, "roll the drill through every shard")
	jsonOut := fs.Bool("json", false, "emit the rcoe-cluster/v1 JSON artifact")
	outFile := fs.String("out", "", "write the artifact (text or JSON) to FILE")
	_ = fs.Parse(args)

	opts, err := baseFn()
	if err == nil {
		opts.System, err = sysFn()
	}
	if err == nil {
		err = preflightOut(*outFile)
	}
	if err == nil {
		err = profStart()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster failover: %v\n", err)
		return 2
	}
	art, err := cluster.FailoverDrill(cluster.FailoverOptions{
		Base: opts, Victim: *victim, KillAfterOps: *killAfter, Rolling: *rolling,
	})
	if perr := profStop(); perr != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster failover: %v\n", perr)
		return 1
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcoe-cluster failover: %v\n", err)
		return 1
	}
	code := emit(art, *jsonOut, *outFile)
	if code != 0 {
		return code
	}
	for _, row := range art.Rows {
		if row.Result.LostWrites != 0 {
			fmt.Fprintf(os.Stderr, "rcoe-cluster failover: %d acknowledged writes lost\n",
				row.Result.LostWrites)
			return 1
		}
	}
	return 0
}
