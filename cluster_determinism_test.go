package rcoe_test

// Cluster-scale determinism: the sharded system inherits the repo-wide
// contract that host parallelism is invisible in simulated results. A
// 4-shard bench campaign must produce byte-identical artifacts at any
// engine worker count, and the failover drill must complete with zero
// lost acknowledged writes.

import (
	"encoding/json"
	"testing"

	"rcoe"
	"rcoe/internal/cluster"
	"rcoe/internal/core"
	"rcoe/internal/workload"
)

func clusterBase() rcoe.ClusterOptions {
	return rcoe.ClusterOptions{
		Shards:     4,
		Workload:   workload.YCSBB,
		Records:    32,
		Operations: 48,
		Seed:       7,
	}
}

// TestClusterBenchWorkerInvariant runs the standard 4-shard bench sweep
// serially and with 8 workers and requires byte-identical artifacts.
func TestClusterBenchWorkerInvariant(t *testing.T) {
	t.Cleanup(func() { rcoe.SetParallelism(0) })
	artifacts := make([][]byte, 0, 2)
	for _, workers := range []int{1, 8} {
		rcoe.SetParallelism(workers)
		art, err := rcoe.ClusterBench(cluster.BenchOptions{Base: clusterBase()})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := json.Marshal(art)
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, data)
	}
	if string(artifacts[0]) != string(artifacts[1]) {
		t.Fatalf("bench artifact differs between 1 and 8 workers:\n%s\n%s",
			artifacts[0], artifacts[1])
	}
}

// TestClusterShardWorkersInvariant sweeps the round-level host pool:
// the bench artifact must be byte-identical whether shard chunks run
// serially (1), on a fixed small pool (3), or one worker per host core
// (0). Shard-worker count is pure host scheduling — fill and drain stay
// serialized in shard-ID order, so no artifact byte may move.
func TestClusterShardWorkersInvariant(t *testing.T) {
	artifacts := make([][]byte, 0, 3)
	for _, workers := range []int{1, 3, 0} {
		base := clusterBase()
		base.ShardWorkers = workers
		art, err := rcoe.ClusterBench(cluster.BenchOptions{Base: base})
		if err != nil {
			t.Fatalf("shard-workers=%d: %v", workers, err)
		}
		data, err := json.Marshal(art)
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, data)
	}
	for i := 1; i < len(artifacts); i++ {
		if string(artifacts[i]) != string(artifacts[0]) {
			t.Fatalf("bench artifact differs across shard-worker counts:\n%s\n%s",
				artifacts[0], artifacts[i])
		}
	}
}

// TestClusterFailoverShardWorkersInvariant runs the failover drill —
// checkpoints, a mid-run node kill, state-transfer replay, and the
// end-of-run audit all under the pool — at three worker counts and
// requires byte-identical artifacts with zero lost acknowledged writes.
func TestClusterFailoverShardWorkersInvariant(t *testing.T) {
	artifacts := make([][]byte, 0, 3)
	for _, workers := range []int{1, 3, 0} {
		base := clusterBase()
		base.System = core.Config{
			Mode: core.ModeLC, Replicas: 3, Masking: true,
			TickCycles: 50_000, BarrierTimeout: 2_000_000,
		}
		base.CheckpointRounds = 1_000
		base.ShardWorkers = workers
		art, err := rcoe.ClusterFailoverDrill(cluster.FailoverOptions{
			Base: base, Victim: 2, KillAfterOps: 12,
		})
		if err != nil {
			t.Fatalf("shard-workers=%d: %v", workers, err)
		}
		if res := art.Rows[0].Result; res.LostWrites != 0 {
			t.Fatalf("shard-workers=%d: failover lost %d acknowledged writes",
				workers, res.LostWrites)
		}
		data, err := json.Marshal(art)
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, data)
	}
	for i := 1; i < len(artifacts); i++ {
		if string(artifacts[i]) != string(artifacts[0]) {
			t.Fatalf("failover artifact differs across shard-worker counts:\n%s\n%s",
				artifacts[0], artifacts[i])
		}
	}
}

// TestClusterFailoverSmoke kills one TMR shard mid-run and requires the
// drill to finish with every acknowledged write intact.
func TestClusterFailoverSmoke(t *testing.T) {
	base := clusterBase()
	base.System = core.Config{
		Mode: core.ModeLC, Replicas: 3, Masking: true,
		TickCycles: 50_000, BarrierTimeout: 2_000_000,
	}
	base.CheckpointRounds = 1_000
	art, err := rcoe.ClusterFailoverDrill(cluster.FailoverOptions{
		Base: base, Victim: 2, KillAfterOps: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := art.Rows[0].Result
	if res.Ops != base.Operations {
		t.Fatalf("ops = %d, want %d", res.Ops, base.Operations)
	}
	if res.LostWrites != 0 {
		t.Fatalf("failover lost %d acknowledged writes", res.LostWrites)
	}
	if res.Shards[2].Failovers != 1 {
		t.Fatalf("victim failovers = %d, want 1", res.Shards[2].Failovers)
	}
}
