package rcoe_test

import (
	"testing"

	"rcoe"
)

// benchExperiment runs one of the paper's experiments per iteration at
// Quick scale; run with -bench to regenerate any table or figure, e.g.
//
//	go test -bench BenchmarkTable2 -benchtime 1x
//
// The rendered table is reported through b.Log on the final iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := rcoe.RunExperiment(id, rcoe.Quick)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == b.N-1 {
			b.Logf("\n%s", tbl)
		}
	}
}

// BenchmarkTable1 regenerates Table I (voting-algorithm examples).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkDataRace regenerates the §V-A1 data-race tolerance experiment.
func BenchmarkDataRace(b *testing.B) { benchExperiment(b, "datarace") }

// BenchmarkTable2 regenerates Table II (native Dhrystone/Whetstone).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table III (virtualised Dhrystone/Whetstone).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table IV (SPLASH-2 kernels under CC-RCoE).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table V (memory bandwidth under contention).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6 regenerates Table VI (YCSB workload mixes).
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFig3 regenerates Fig 3 (Redis/YCSB throughput).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkTable7 regenerates Table VII (memory fault injection).
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkTable8 regenerates Table VIII (register fault injection).
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkTable9 regenerates Table IX (overclocking-style burst faults).
func BenchmarkTable9(b *testing.B) { benchExperiment(b, "table9") }

// BenchmarkTable10 regenerates Table X (error recovery time).
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }

// BenchmarkFig4 regenerates Fig 4 (throughput with error masking).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkAblateSig measures the signature-configuration trade-off.
func BenchmarkAblateSig(b *testing.B) { benchExperiment(b, "ablate-sig") }

// BenchmarkAblateCounting compares hardware vs compiler branch counting.
func BenchmarkAblateCounting(b *testing.B) { benchExperiment(b, "ablate-count") }

// BenchmarkAblateTick sweeps the preemption-timer period.
func BenchmarkAblateTick(b *testing.B) { benchExperiment(b, "ablate-tick") }

// BenchmarkAblateFletcher contrasts Fletcher with an additive checksum.
func BenchmarkAblateFletcher(b *testing.B) { benchExperiment(b, "ablate-fletcher") }

// BenchmarkAblateLatency measures detection latency vs tick period.
func BenchmarkAblateLatency(b *testing.B) { benchExperiment(b, "ablate-latency") }

// BenchmarkTraceOverhead measures the flight recorder's host-time cost on
// Table II's LC-D Dhrystone configuration. "off" is the shipping default:
// the hook points are compiled in but each is a single nil check, so the
// paper-facing experiments (which all run untraced) must see a negligible
// delta versus a hookless build. "on" records every syscall, tick,
// barrier and vote event into the rings. Compare ns/op between the two
// sub-benchmarks; EXPERIMENTS.md records the measured numbers. Neither
// setting perturbs *simulated* time (see core's zero-perturbation test).
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		for i := 0; i < b.N; i++ {
			sys, err := rcoe.BuildSystem(rcoe.Config{
				Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 20_000,
				Trace: rcoe.TraceConfig{Enabled: enabled},
			}, rcoe.Dhrystone(1500))
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Run(3_000_000_000); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkIdleFastForward measures the event-driven idle skip on an
// idle-dominated scenario: a masking TMR system whose third replica is
// stall-injected, so the survivors spend the barrier-timeout window (and
// the watchdog wait after it) fully parked before ejecting the straggler
// and finishing as DMR. "on" is the shipping default; "off" forces the
// naive cycle-by-cycle loop. The two produce bit-identical simulations
// (see the TestDeterminism differential suite); only host time differs.
// EXPERIMENTS.md records the measured speedup.
func BenchmarkIdleFastForward(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			sys, err := rcoe.BuildSystem(rcoe.Config{
				Mode: rcoe.ModeLC, Replicas: 3, Masking: true,
				TickCycles: 50_000, BarrierTimeout: 2_000_000,
				DisableFastForward: disable,
			}, rcoe.Dhrystone(20_000))
			if err != nil {
				b.Fatal(err)
			}
			sys.RunCycles(50_000)
			sys.InjectStall(2)
			if err := sys.Run(3_000_000_000); err != nil {
				b.Fatal(err)
			}
			if len(sys.Detections()) == 0 {
				b.Fatal("stall was not detected")
			}
		}
	}
	b.Run("on", func(b *testing.B) { run(b, false) })
	b.Run("off", func(b *testing.B) { run(b, true) })
}

// BenchmarkExecHotLoop measures the host-side execution accelerators on
// an instruction-dense workload: Table II's Dhrystone under LC-DMR, where
// nearly every simulated cycle retires a replicated instruction and idle
// fast-forward has nothing to skip. "on" is the shipping default
// (superblock engine + execution cache); "ec" is the PR-5 configuration
// (execution cache only) — the baseline the superblock speedup is quoted
// against; "sb" is the superblock engine alone; "off" is the naive
// translate/read/decode path per instruction. All four produce
// bit-identical simulations (see the TestDeterminism differential suite);
// only host time differs. EXPERIMENTS.md records the measured speedups
// and hit rates.
func BenchmarkExecHotLoop(b *testing.B) {
	run := func(b *testing.B, noEC, noSB bool) {
		for i := 0; i < b.N; i++ {
			// Construction (memory arena, kernels, program load) is
			// identical in all modes and not what this benchmark measures;
			// keep only the execution loop on the clock.
			b.StopTimer()
			sys, err := rcoe.BuildSystem(rcoe.Config{
				Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 20_000,
				DisableExecCache: noEC, DisableSuperblock: noSB,
			}, rcoe.Dhrystone(10_000))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := sys.Run(3_000_000_000); err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				if !noEC && noSB {
					// Icache stats are only meaningful when the batch
					// path isn't bypassing the per-instruction fetch.
					s := sys.Machine().ExecCacheStats()
					b.ReportMetric(s.DecodeHitRate()*100, "decode-hit-%")
					b.ReportMetric(s.TLBHitRate()*100, "tlb-hit-%")
				}
				if !noSB {
					s := sys.Machine().SuperblockStats()
					b.ReportMetric(s.HitRate()*100, "block-hit-%")
				}
			}
		}
	}
	b.Run("on", func(b *testing.B) { run(b, false, false) })
	b.Run("ec", func(b *testing.B) { run(b, false, true) })
	b.Run("sb", func(b *testing.B) { run(b, true, false) })
	b.Run("off", func(b *testing.B) { run(b, true, true) })
}
