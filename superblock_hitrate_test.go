package rcoe_test

import (
	"testing"

	"rcoe"
)

// TestSuperblockDhrystoneHitRate is the CI bench smoke for the superblock
// engine: on Table II's Dhrystone — the instruction-dense workload the
// host-speedup numbers in EXPERIMENTS.md are quoted on — at least 90% of
// all retired instructions must execute from the batched path. A hit rate
// collapse here means the engine is refusing or invalidating blocks on
// the hot loop and the speedup silently regressed to exec-cache levels,
// which no determinism differential would catch (the contract is about
// bits, not speed).
func TestSuperblockDhrystoneHitRate(t *testing.T) {
	sys, err := rcoe.BuildSystem(rcoe.Config{
		Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 20_000,
	}, rcoe.Dhrystone(2_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(3_000_000_000); err != nil {
		t.Fatal(err)
	}
	s := sys.Machine().SuperblockStats()
	if s.Instrs == 0 || s.Blocks == 0 {
		t.Fatalf("superblock engine never engaged: %+v", s)
	}
	if hr := s.HitRate(); hr < 0.9 {
		t.Fatalf("block-hit rate %.2f%% < 90%% on Dhrystone (%+v)", hr*100, s)
	}
}
