// Package rcoe is the public interface to the RCoE reproduction: redundant
// co-execution of a complete software stack on a simulated COTS multicore,
// after "Fault Tolerance Through Redundant Execution on COTS Multicores:
// Exploring Trade-Offs" (DSN 2019).
//
// The package re-exports the building blocks a user needs:
//
//   - configure and build a replicated system (New, Config, Mode);
//   - write guest programs against the simulated ISA (NewProgram / the
//     asm builder) or use the stock workloads (Dhrystone, Whetstone, the
//     key-value server, MD5, SPLASH kernels);
//   - run the paper's experiments (Experiments, RunExperiment);
//   - run fault-injection campaigns (MemCampaign, RegCampaign,
//     HardCampaign, RecoveryTrial, SurvivalTrial, Soak);
//   - drive the Redis-stand-in system benchmark (RunKV);
//   - compose replicated nodes into a sharded cluster with
//     consistent-hash routing and state-transfer failover (RunCluster,
//     ClusterFailoverDrill — see cmd/rcoe-cluster);
//   - record per-replica flight-recorder traces and metrics for
//     divergence forensics (TraceConfig, MetricsSnapshot,
//     CaptureForensics — see cmd/rcoe-trace).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package rcoe

import (
	"rcoe/internal/asm"
	"rcoe/internal/bench"
	"rcoe/internal/cluster"
	"rcoe/internal/compilerpass"
	"rcoe/internal/core"
	"rcoe/internal/exp"
	"rcoe/internal/faults"
	"rcoe/internal/guest"
	"rcoe/internal/harness"
	"rcoe/internal/kernel"
	"rcoe/internal/machine"
	"rcoe/internal/metrics"
	"rcoe/internal/stats"
	"rcoe/internal/trace"
	"rcoe/internal/vmm"
	"rcoe/internal/workload"
)

// Replication modes and configuration.
type (
	// Config describes a replicated system (mode, replica count,
	// signature configuration, machine profile, timer period, masking).
	Config = core.Config
	// Mode selects the coupling model: ModeNone, ModeLC, ModeCC.
	Mode = core.Mode
	// SigConfig selects signature effort: SigIO ("N"), SigArgs ("A"),
	// SigSync ("S").
	SigConfig = core.SigConfig
	// System is a replicated (or baseline) software stack.
	System = core.System
	// Detection records one error-detection event.
	Detection = core.Detection
	// Profile describes a machine profile.
	Profile = machine.Profile
)

// Re-exported mode and signature constants.
const (
	ModeNone = core.ModeNone
	ModeLC   = core.ModeLC
	ModeCC   = core.ModeCC

	SigIO   = core.SigIO
	SigArgs = core.SigArgs
	SigSync = core.SigSync
)

// X86 returns the profile standing in for the paper's Core i7-6700.
func X86() Profile { return machine.X86() }

// Arm returns the profile standing in for the paper's SABRE Lite
// (i.MX6 / Cortex-A9).
func Arm() Profile { return machine.Arm() }

// New builds a replicated system from a configuration.
func New(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Guest programs.
type (
	// Program is a guest workload for the simulated ISA.
	Program = guest.Program
	// Builder is the assembly builder guest programs are written with.
	Builder = asm.Builder
)

// NewBuilder creates an empty assembly builder.
func NewBuilder() *Builder { return asm.New() }

// RewriteAtomics replaces canonical load-linked/store-conditional retry
// loops with the kernel-mediated atomic system call, as compiler-assisted
// CC-RCoE requires (§III-D). It returns the number of loops rewritten.
func RewriteAtomics(b *Builder) int { return compilerpass.RewriteAtomics(b) }

// Stock workloads from the paper's evaluation.
var (
	// Dhrystone builds the integer microbenchmark (Table II).
	Dhrystone = guest.Dhrystone
	// Whetstone builds the floating-point microbenchmark (Table II).
	Whetstone = guest.Whetstone
	// Membench builds the memory-bandwidth benchmark (Table V).
	Membench = guest.Membench
	// DataRace builds the racy-counter demonstrator (§V-A1).
	DataRace = guest.DataRace
	// AtomicCounter is DataRace's race-free, kernel-mediated variant.
	AtomicCounter = guest.AtomicCounter
	// MD5 builds the md5sum workload (Table VIII); pad input with MD5Pad.
	MD5 = guest.MD5
	// MD5Pad applies standard MD5 padding.
	MD5Pad = guest.MD5Pad
	// SplashSuite returns the fourteen SPLASH-2-style kernels (Table IV).
	SplashSuite = guest.SplashSuite
)

// Load assembles a program for the system's configuration — applying the
// compiler branch-counting pass when the configuration needs it — and
// loads it into every replica. Prefer BuildSystem, which sizes the system
// for the program; Load exists for pre-built systems whose configuration
// already matches.
func Load(sys *System, p Program) error {
	cfg := sys.Config()
	b := p.Build()
	needsPass := cfg.Mode == core.ModeCC &&
		(!cfg.Profile.PrecisePMU || cfg.ForceCompilerCounting)
	if needsPass {
		compilerpass.Instrument(b)
	}
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		return err
	}
	return sys.Load(kernel.ProcessConfig{
		Prog: prog, DataBytes: p.DataBytes, Data: p.Data, Arg: p.Arg, Stacks: p.Stacks,
		Relocs: b.Relocs(),
	})
}

// BuildSystem creates a system sized for the program and loads it, ready
// to Run.
func BuildSystem(cfg Config, p Program) (*System, error) {
	if cfg.Profile.Name == "" {
		cfg.Profile = machine.X86()
	}
	b := p.Build()
	needsPass := cfg.Mode == core.ModeCC &&
		(!cfg.Profile.PrecisePMU || cfg.ForceCompilerCounting)
	if needsPass {
		compilerpass.Instrument(b)
	}
	prog, err := b.Assemble(kernel.TextVA)
	if err != nil {
		return nil, err
	}
	if needsPass {
		cfg.BranchSites = compilerpass.BranchSites(prog, kernel.TextVA)
	}
	if cfg.PartitionBytes == 0 {
		part := uint64(1 << 20)
		for part < p.DataBytes+(2<<20) {
			part <<= 1
		}
		cfg.PartitionBytes = part
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Load(kernel.ProcessConfig{
		Prog: prog, DataBytes: p.DataBytes, Data: p.Data, Arg: p.Arg, Stacks: p.Stacks,
		Relocs: b.Relocs(),
	}); err != nil {
		return nil, err
	}
	return sys, nil
}

// Virtual machines (Tables III/IV).
type (
	// VM is a guest running on the replicated hypervisor.
	VM = vmm.VM
	// GuestConfig configures a VM launch.
	GuestConfig = vmm.GuestConfig
)

// LaunchVM boots a guest program in a virtual-machine context.
func LaunchVM(cfg GuestConfig) (*VM, error) { return vmm.Launch(cfg) }

// The key-value system benchmark (Fig 3, Tables VII/IX).
type (
	// KVOptions configures a Redis-stand-in benchmark run.
	KVOptions = harness.KVOptions
	// KVResult is its outcome.
	KVResult = harness.KVResult
	// WorkloadKind selects the YCSB mix (workload A-F).
	WorkloadKind = workload.Kind
)

// YCSB workload kinds.
const (
	YCSBA = workload.YCSBA
	YCSBB = workload.YCSBB
	YCSBC = workload.YCSBC
	YCSBD = workload.YCSBD
	YCSBE = workload.YCSBE
	YCSBF = workload.YCSBF
)

// RunKV runs the replicated key-value server under YCSB-style load.
func RunKV(opts KVOptions) (KVResult, error) { return harness.RunKV(opts) }

// The sharded cluster (see cmd/rcoe-cluster and DESIGN.md §4j).
type (
	// Node is one self-contained replicated key-value server — the unit
	// the cluster composes and the state-transfer boundary of shard
	// failover.
	Node = harness.Node
	// NodeOptions configures a node boot.
	NodeOptions = harness.NodeOptions
	// ClusterOptions configures a sharded cluster run: shard count,
	// per-shard replication, the partitioned YCSB workload and the
	// client-stream layout.
	ClusterOptions = cluster.Options
	// ClusterResult is a cluster run's outcome, including the
	// acknowledged-write audit and per-shard statistics.
	ClusterResult = cluster.Result
	// Cluster is a constructed, steppable sharded system (failover,
	// per-shard redundancy control, checkpointing).
	Cluster = cluster.Cluster
	// ClusterRing is the consistent-hash router partitioning the
	// keyspace over shards.
	ClusterRing = cluster.Ring
	// ClusterArtifact is the rcoe-cluster/v1 result artifact.
	ClusterArtifact = cluster.Artifact
)

// NewNode boots one replicated key-value server node.
func NewNode(opts NodeOptions) (*Node, error) { return harness.NewNode(opts) }

// NewCluster builds a sharded cluster ready to step or Run.
func NewCluster(opts ClusterOptions) (*Cluster, error) { return cluster.New(opts) }

// RunCluster runs a sharded cluster end to end: preload, run phase, and
// the acknowledged-write audit.
func RunCluster(opts ClusterOptions) (ClusterResult, error) { return cluster.Run(opts) }

// ClusterBench sweeps the standard per-shard replication configurations
// over one cluster shape, fanned across host workers; worker count
// never changes the artifact.
func ClusterBench(opts cluster.BenchOptions) (*ClusterArtifact, error) {
	return cluster.Bench(opts)
}

// ClusterFailoverDrill kills shard nodes mid-run, transfers state to
// fresh nodes, and audits that no acknowledged write was lost.
func ClusterFailoverDrill(opts cluster.FailoverOptions) (*ClusterArtifact, error) {
	return cluster.FailoverDrill(opts)
}

// Fault injection (Tables VII-X, Fig 4).
type (
	// MemCampaignOptions configures random memory-fault campaigns.
	MemCampaignOptions = faults.MemCampaignOptions
	// RegCampaignOptions configures register-fault campaigns on md5.
	RegCampaignOptions = faults.RegCampaignOptions
	// RecoveryOptions configures TMR-downgrade measurements.
	RecoveryOptions = faults.RecoveryOptions
	// Outcome classifies a fault trial.
	Outcome = faults.Outcome
	// FaultClass selects a hard-fault model (transient, stuck-at, burst,
	// intermittent, device).
	FaultClass = faults.FaultClass
	// FaultTally accumulates fault-trial outcomes per campaign.
	FaultTally = faults.Tally
	// FaultCategory is a dependability-taxonomy bucket (SDC, detected-
	// corrected, detected-uncorrected, masked).
	FaultCategory = faults.Category
	// HardCampaignOptions configures the hard-fault characterization
	// study across fault classes.
	HardCampaignOptions = faults.HardCampaignOptions
	// SurvivalOptions configures a permanent-fault survival trial.
	SurvivalOptions = faults.SurvivalOptions
	// SurvivalResult reports a permanent-fault survival trial.
	SurvivalResult = faults.SurvivalResult
	// SoakOptions configures the chaos-soak campaign.
	SoakOptions = faults.SoakOptions
	// SoakResult summarises a chaos-soak campaign.
	SoakResult = faults.SoakResult
	// SoakCycleReport reports one chaos-soak fault cycle.
	SoakCycleReport = faults.SoakCycle
	// SoakSweepOptions configures a sweep of independent soak campaigns
	// fanned across host cores.
	SoakSweepOptions = faults.SoakSweepOptions
	// SoakSweepResult aggregates a soak sweep, ordered by campaign index.
	SoakSweepResult = faults.SoakSweepResult
)

// Hard-fault classes (HardCampaignOptions.Classes).
const (
	ClassTransient    = faults.ClassTransient
	ClassStuckAt      = faults.ClassStuckAt
	ClassBurst        = faults.ClassBurst
	ClassIntermittent = faults.ClassIntermittent
	ClassDevice       = faults.ClassDevice
)

// Dependability-taxonomy categories (Categorize, Tally.Categories).
const (
	CategorySDC                 = faults.CategorySDC
	CategoryDetectedCorrected   = faults.CategoryDetectedCorrected
	CategoryDetectedUncorrected = faults.CategoryDetectedUncorrected
	CategoryMasked              = faults.CategoryMasked
)

// AllFaultClasses returns every hard-fault class in canonical order.
func AllFaultClasses() []FaultClass { return faults.AllClasses() }

// AllFaultCategories returns every taxonomy category in canonical order.
func AllFaultCategories() []FaultCategory { return faults.AllCategories() }

// ParseFaultClasses parses a comma-separated class list ("all" selects
// every class).
func ParseFaultClasses(s string) ([]FaultClass, error) { return faults.ParseClasses(s) }

// CategorizeOutcome maps a trial outcome into the SDC taxonomy.
func CategorizeOutcome(o Outcome) FaultCategory { return faults.Categorize(o) }

// Resilience-lifecycle sentinels, composable with errors.Is.
var (
	// ErrReintegrate wraps every live re-integration precondition failure.
	ErrReintegrate = core.ErrReintegrate
	// ErrNoDowngrade is returned by RecoveryTrial when no downgrade
	// occurred.
	ErrNoDowngrade = faults.ErrNoDowngrade
	// ErrNoEjection is returned by Soak when an injected stall was not
	// resolved by straggler ejection.
	ErrNoEjection = faults.ErrNoEjection
	// ErrTraceDisabled wraps forensics requests against a system built
	// without Config.Trace.Enabled.
	ErrTraceDisabled = core.ErrTraceDisabled
)

// Flight recorder & divergence forensics.
type (
	// TraceConfig enables the per-replica flight recorder (Config.Trace).
	TraceConfig = core.TraceConfig
	// TraceRecorder holds the per-replica and system event rings.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded event (kind, logical time, cycle, args).
	TraceEvent = trace.Event
	// TraceDivergence locates the first disagreeing event across replica
	// streams aligned by logical time.
	TraceDivergence = trace.Divergence
	// DivergenceReport is the frozen forensic bundle a detection captures.
	DivergenceReport = core.DivergenceReport
	// ReplicaForensics is one replica's architectural state in a report.
	ReplicaForensics = core.ReplicaForensics
	// MetricsSnapshot is a point-in-time copy of the system's counters
	// and histograms, renderable with its Table method.
	MetricsSnapshot = metrics.Snapshot
)

// FirstDivergence aligns replica event streams by logical time and
// locates the first disagreeing event.
func FirstDivergence(streams [][]TraceEvent) TraceDivergence {
	return trace.FirstDivergence(streams)
}

// SaveTrace writes a recorder's rings to a trace file cmd/rcoe-trace can
// dump, diff and summarize.
func SaveTrace(path string, rec *TraceRecorder) error { return rec.SaveFile(path) }

// LoadTrace reads a trace file written by SaveTrace.
func LoadTrace(path string) (*TraceRecorder, error) { return trace.LoadFile(path) }

// MemCampaign runs the Table VII memory fault-injection study.
func MemCampaign(opts MemCampaignOptions) (*FaultTally, error) {
	return faults.MemCampaign(opts)
}

// RegCampaign runs the Table VIII register fault-injection study.
func RegCampaign(opts RegCampaignOptions) (faults.RegTally, error) {
	return faults.RegCampaign(opts)
}

// RecoveryTrial measures one TMR->DMR downgrade (Table X / Fig 4).
func RecoveryTrial(opts RecoveryOptions) (faults.RecoveryResult, error) {
	return faults.RecoveryTrial(opts)
}

// HardCampaign runs the hard-fault characterization study: per fault
// class, outcomes tallied for the SDC/detected/masked taxonomy.
func HardCampaign(opts HardCampaignOptions) (map[FaultClass]*FaultTally, error) {
	return faults.HardCampaign(opts)
}

// SurvivalTrial runs one permanent-fault survival measurement: a stuck-at
// bit in a replica's signature accumulator that no overwrite can clear.
func SurvivalTrial(opts SurvivalOptions) (SurvivalResult, error) {
	return faults.SurvivalTrial(opts)
}

// Soak runs the chaos-soak campaign: repeated randomized faults against a
// masking TMR key-value system, with straggler ejection and live
// re-integration after every downgrade.
func Soak(opts SoakOptions) (SoakResult, error) { return faults.Soak(opts) }

// SoakSweep fans independent chaos-soak campaigns across host cores on
// the experiment engine and aggregates them; per-campaign seeds derive
// from the template's seed, so results are identical at any worker count.
func SoakSweep(opts SoakSweepOptions) (SoakSweepResult, error) {
	return faults.SoakSweep(opts)
}

// Experiments: the paper's tables and figures.
type (
	// Experiment is one reproducible table/figure.
	Experiment = bench.Experiment
	// Scale selects Quick or Full experiment sizing.
	Scale = bench.Scale
	// Table is a rendered result table.
	Table = stats.Table
)

// Experiment scales.
const (
	Quick = bench.Quick
	Full  = bench.Full
)

// Experiments returns every experiment in paper order.
func Experiments() []Experiment { return bench.All() }

// SetParallelism sets the experiment engine's host worker-pool size used
// by experiments, fault campaigns and soak sweeps (n < 1 restores the
// default, the host core count). Worker count is a host-side throughput
// knob only: campaigns produce identical results at any setting.
func SetParallelism(n int) { exp.SetDefaultWorkers(n) }

// Parallelism returns the engine's current host worker-pool size.
func Parallelism() int { return exp.DefaultWorkers() }

// DeriveSeed mixes a campaign master seed and a job index into a
// statistically independent, reproducible per-job seed (the engine's
// splitmix64 derivation).
func DeriveSeed(master uint64, index int) uint64 { return exp.DeriveSeed(master, index) }

// RunExperiment runs one experiment by ID ("table2", "fig3", ...).
func RunExperiment(id string, s Scale) (*Table, error) {
	e, ok := bench.Lookup(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return e.Run(s)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "rcoe: unknown experiment " + string(e)
}
