// datarace reproduces §V-A1: 16 threads hammer an unlocked shared counter.
// Under loosely-coupled RCoE the replicas preempt at different
// instructions, so their race outcomes — and final memory — diverge; under
// closely-coupled RCoE preemption is instruction-accurate and the replicas
// never diverge (though the counter still differs from the locked result).
package main

import (
	"bytes"
	"fmt"
	"os"

	"rcoe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datarace:", err)
		os.Exit(1)
	}
}

func run() error {
	const threads, iters, idle = 16, 80, 40
	for _, mode := range []rcoe.Mode{rcoe.ModeLC, rcoe.ModeCC} {
		diverged := 0
		runs := 5
		for i := 0; i < runs; i++ {
			sys, err := rcoe.BuildSystem(rcoe.Config{
				Mode:       mode,
				Replicas:   2,
				TickCycles: 1_900 + uint64(i)*311,
			}, rcoe.DataRace(threads, iters, idle))
			if err != nil {
				return err
			}
			if err := sys.Run(2_000_000_000); err != nil {
				return err
			}
			c0, err := sys.Replica(0).K.CopyFromUser(0x40_0000, 8)
			if err != nil {
				return err
			}
			c1, err := sys.Replica(1).K.CopyFromUser(0x40_0000, 8)
			if err != nil {
				return err
			}
			if !bytes.Equal(c0, c1) {
				diverged++
			}
		}
		fmt.Printf("%v: replicas diverged in %d/%d racy runs\n", mode, diverged, runs)
	}
	fmt.Println("\nLC-RCoE cannot replicate racy code; CC-RCoE's precise logical")
	fmt.Println("clock keeps even racy replicas identical (§V-A1). The race-free")
	fmt.Println("fix is the kernel-mediated atomic syscall (rcoe.AtomicCounter).")
	return nil
}
