// Quickstart: build a DMR (dual modular redundant) system, run a small
// program on it, corrupt one replica's memory mid-run, and watch the
// signature vote detect the divergence.
package main

import (
	"fmt"
	"os"

	"rcoe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A guest program in the simulated ISA: sum the first 100000
	// integers, report the result through the state signature, exit.
	prog := rcoe.Program{
		Name:      "sum",
		DataBytes: 4096,
		Stacks:    1,
		Build: func() *rcoe.Builder {
			b := rcoe.NewBuilder()
			b.Li(5, 0)         // acc
			b.Li(6, 0)         // i
			b.Li64(7, 100_000) // n
			b.Label("loop")
			b.Add(5, 5, 6)
			b.Addi(6, 6, 1)
			b.Blt(6, 7, "loop")
			b.Li64(8, 0x40_0000) // DataVA
			b.St(8, 8, 5, 0)
			b.Mov(1, 5)
			b.Syscall(1) // SysExit with the sum as the exit code
			return b
		},
	}

	// First: a clean loosely-coupled DMR run.
	sys, err := rcoe.BuildSystem(rcoe.Config{
		Mode:       rcoe.ModeLC,
		Replicas:   2,
		TickCycles: 20_000,
	}, prog)
	if err != nil {
		return err
	}
	if err := sys.Run(500_000_000); err != nil {
		return err
	}
	fmt.Printf("clean run: both replicas computed %d in %d cycles\n",
		sys.Replica(0).K.Thread(0).ExitCode, sys.Machine().Now())

	// Second: the same system, but we flip one bit in replica 1's data
	// partition mid-run — the replicas diverge and the vote detects it.
	sys2, err := rcoe.BuildSystem(rcoe.Config{
		Mode:       rcoe.ModeLC,
		Replicas:   2,
		TickCycles: 20_000,
	}, prog)
	if err != nil {
		return err
	}
	sys2.RunCycles(50_000)
	// Corrupt the accumulator's future: flip a bit in replica 1's
	// signature accumulator so the next vote disagrees.
	lay := sys2.Replica(1).K.Layout()
	if err := sys2.Machine().Mem().FlipBit(lay.SigPA()+8, 4); err != nil {
		return err
	}
	err = sys2.Run(500_000_000)
	halted, reason := sys2.Halted()
	if !halted {
		return fmt.Errorf("fault was not detected (run error: %v)", err)
	}
	fmt.Printf("faulty run: detected and fail-stopped: %s\n", reason)
	for _, d := range sys2.Detections() {
		fmt.Printf("  detection: %v at cycle %d (replica %d)\n", d.Kind, d.Cycle, d.Replica)
	}
	return nil
}
