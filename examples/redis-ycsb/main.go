// redis-ycsb runs the paper's system benchmark (§V-B): a Redis-stand-in
// key-value server, replicated under LC- or CC-RCoE, behind a simulated
// NIC, driven by YCSB-style load — and compares throughput against the
// unreplicated baseline.
package main

import (
	"fmt"
	"os"

	"rcoe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "redis-ycsb:", err)
		os.Exit(1)
	}
}

func run() error {
	cases := []struct {
		label string
		mode  rcoe.Mode
		reps  int
		sig   rcoe.SigConfig
	}{
		{"Base ", rcoe.ModeNone, 1, rcoe.SigArgs},
		{"LC-D ", rcoe.ModeLC, 2, rcoe.SigArgs},
		{"LC-T ", rcoe.ModeLC, 3, rcoe.SigArgs},
		{"CC-D ", rcoe.ModeCC, 2, rcoe.SigArgs},
		{"CC-T ", rcoe.ModeCC, 3, rcoe.SigArgs},
	}
	var base float64
	fmt.Println("YCSB-A over the replicated key-value server (48 records, 150 ops):")
	for _, c := range cases {
		res, err := rcoe.RunKV(rcoe.KVOptions{
			System: rcoe.Config{
				Mode:       c.mode,
				Replicas:   c.reps,
				Sig:        c.sig,
				TickCycles: 60_000,
			},
			Workload:    rcoe.YCSBA,
			Records:     48,
			Operations:  150,
			TraceOutput: true,
			Seed:        7,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", c.label, err)
		}
		if c.mode == rcoe.ModeNone {
			base = res.Throughput
		}
		fmt.Printf("  %s %6.1f ops/Mcycle (%3.0f%% of base)  syncs=%d votes=%d\n",
			c.label, res.Throughput, 100*res.Throughput/base,
			res.Stats.Syncs, res.Stats.Votes)
	}
	fmt.Println("\nReplication costs throughput (the paper's Fig. 3); the CC")
	fmt.Println("driver pays extra for kernel-mediated device access (§III-E).")
	return nil
}
