// fault-masking demonstrates TMR error masking (§IV): a triple-modular
// system serves the key-value workload, one replica's state is corrupted
// mid-run, the replicas vote it out (Listing 5), the system downgrades to
// DMR — and service continues. The primary and non-primary removal costs
// differ by about two orders of magnitude (Table X).
package main

import (
	"fmt"
	"os"

	"rcoe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fault-masking:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, c := range []struct {
		label  string
		faulty int
	}{
		{"non-primary replica (R2)", 2},
		{"primary replica (R0)", 0},
	} {
		res, err := rcoe.RecoveryTrial(rcoe.RecoveryOptions{
			System:        rcoe.Config{Mode: rcoe.ModeLC},
			FaultyReplica: c.faulty,
			Operations:    180,
			Seed:          9,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", c.label, err)
		}
		fmt.Printf("corrupted %s:\n", c.label)
		fmt.Printf("  masked: replica voted out, service continued (%d ops total)\n", res.Ops)
		fmt.Printf("  recovery cost: %d cycles (primary removal: %v)\n", res.Cycles, res.WasPrimary)
		fmt.Printf("  throughput timeline (ops/Mcycle per window):\n    ")
		for i, tp := range res.WindowThroughput {
			if i == res.DowngradeWindow {
				fmt.Printf("[fault!] ")
			}
			fmt.Printf("%.0f ", tp)
		}
		fmt.Println()
	}
	fmt.Println("\nRemoving the primary re-routes interrupts and reconfigures DMA")
	fmt.Println("mappings, making it far more expensive than removing a follower.")

	// Re-integration (§IV-C): bring the removed replica back online by
	// cloning a survivor's state, restoring full TMR protection. The
	// flight recorder is on, so the detection freezes a forensic report.
	sys, err := rcoe.BuildSystem(rcoe.Config{
		Mode: rcoe.ModeLC, Replicas: 3, Masking: true, TickCycles: 20_000,
		Trace: rcoe.TraceConfig{Enabled: true},
	}, rcoe.Dhrystone(60_000))
	if err != nil {
		return err
	}
	sys.RunCycles(60_000)
	lay := sys.Replica(2).K.Layout()
	if err := sys.Machine().Mem().FlipBit(lay.SigPA()+8, 3); err != nil {
		return err
	}
	if err := sys.Machine().RunUntil(func() bool { return sys.AliveCount() == 2 }, 200_000_000); err != nil {
		return err
	}
	fmt.Printf("\nfault masked: running DMR with %d replicas\n", sys.AliveCount())
	if rep := sys.TakeDivergenceReport(); rep != nil {
		fmt.Println("\nflight-recorder forensics:")
		fmt.Println(rep)
	}
	if err := sys.Reintegrate(2); err != nil {
		return err
	}
	fmt.Printf("replica 2 re-integrated: back to TMR with %d replicas\n", sys.AliveCount())
	if err := sys.Run(3_000_000_000); err != nil {
		return err
	}
	fmt.Println("restored TMR ran to completion.")
	return nil
}
