package rcoe_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rcoe"
	"rcoe/internal/faults"
	"rcoe/internal/harness"
	"rcoe/internal/workload"
)

// These differential tests are the host-optimisation determinism
// contract: for every tier-1 scenario, a run with the event-driven idle
// skip and/or the execution cache (predecoded instructions + translation
// memos) enabled must be bit-identical — final machine cycle, per-core
// counters and registers, kernel signatures, detections, stats, metrics —
// to the same run stepped naively cycle by cycle with every cache off.
// Any drift means an optimisation skipped or memoised something the naive
// loop would have observed differently.

// hostVariants enumerates the host-optimisation combinations each
// scenario runs under. The first entry is the baseline everything-on
// configuration the others are compared against.
var hostVariants = []struct {
	name       string
	noFF, noEC bool
}{
	{"all-on", false, false},
	{"no-fastforward", true, false},
	{"no-execcache", false, true},
	{"naive", true, true},
}

// systemFingerprint renders everything observable about a finished system
// into a canonical string, so differences show up as a readable diff.
func systemFingerprint(sys *rcoe.System) string {
	var sb strings.Builder
	m := sys.Machine()
	halted, reason := sys.Halted()
	fmt.Fprintf(&sb, "now=%d finished=%v halted=%v reason=%q\n",
		m.Now(), sys.Finished(), halted, reason)
	for i := 0; i < sys.NumReplicas(); i++ {
		c := m.Core(i)
		var regs uint64
		for _, r := range c.Regs {
			regs = regs*0x100000001b3 ^ r
		}
		ev, sum := sys.Replica(i).K.Signature()
		fmt.Fprintf(&sb, "core%d state=%d cycles=%d instr=%d branches=%d pc=%#x regs=%#x sig=(%d,%#x)\n",
			i, c.State, c.Cycles, c.Instructions, c.UserBranches, c.PC, regs, ev, sum)
	}
	fmt.Fprintf(&sb, "stats=%+v\n", sys.Stats())
	for _, d := range sys.Detections() {
		fmt.Fprintf(&sb, "detection=%+v\n", d)
	}
	if sys.Metrics() != nil {
		sb.WriteString(sys.MetricsSnapshot().Table("metrics"))
	}
	return sb.String()
}

// diffLine reports the first line two fingerprints disagree on.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  fast:  %s\n  naive: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

func assertIdentical(t *testing.T, name, fast, slow string) {
	t.Helper()
	if fast != slow {
		t.Fatalf("%s: fast-forward run diverged from naive run\n%s", name, diffLine(fast, slow))
	}
}

func TestDeterminismTable2Kernels(t *testing.T) {
	configs := []struct {
		name string
		cfg  rcoe.Config
	}{
		{"base", rcoe.Config{Mode: rcoe.ModeNone, Replicas: 1, TickCycles: 20_000}},
		{"lc-dmr", rcoe.Config{Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 20_000}},
		{"lc-tmr", rcoe.Config{Mode: rcoe.ModeLC, Replicas: 3, TickCycles: 20_000}},
		{"cc-dmr", rcoe.Config{Mode: rcoe.ModeCC, Replicas: 2, TickCycles: 20_000}},
	}
	programs := []struct {
		name string
		prog rcoe.Program
	}{
		{"dhrystone", rcoe.Dhrystone(300)},
		{"whetstone", rcoe.Whetstone(30)},
	}
	for _, p := range programs {
		for _, c := range configs {
			t.Run(p.name+"/"+c.name, func(t *testing.T) {
				run := func(noFF, noEC bool) string {
					cfg := c.cfg
					cfg.DisableFastForward = noFF
					cfg.DisableExecCache = noEC
					sys, err := rcoe.BuildSystem(cfg, p.prog)
					if err != nil {
						t.Fatal(err)
					}
					if err := sys.Run(500_000_000); err != nil {
						t.Fatalf("run (noFF=%v noEC=%v): %v", noFF, noEC, err)
					}
					return systemFingerprint(sys)
				}
				base := run(hostVariants[0].noFF, hostVariants[0].noEC)
				for _, v := range hostVariants[1:] {
					assertIdentical(t, p.name+"/"+c.name+"/"+v.name, base, run(v.noFF, v.noEC))
				}
			})
		}
	}
}

func TestDeterminismKVUnderYCSB(t *testing.T) {
	run := func(noFF, noEC bool) (harness.KVResult, string) {
		opts := harness.KVOptions{
			System: rcoe.Config{
				Mode:               rcoe.ModeLC,
				Replicas:           3,
				TickCycles:         50_000,
				DisableFastForward: noFF,
				DisableExecCache:   noEC,
				Trace:              rcoe.TraceConfig{Enabled: true},
			},
			Workload:   workload.YCSBA,
			Records:    40,
			Operations: 80,
			Seed:       11,
		}
		kv, err := harness.NewKV(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := kv.Run()
		if err != nil {
			t.Fatalf("kv run (noFF=%v noEC=%v): %v", noFF, noEC, err)
		}
		return res, systemFingerprint(kv.Sys)
	}
	baseRes, baseFP := run(hostVariants[0].noFF, hostVariants[0].noEC)
	for _, v := range hostVariants[1:] {
		res, fp := run(v.noFF, v.noEC)
		assertIdentical(t, "kv-ycsba/"+v.name, baseFP, fp)
		if !reflect.DeepEqual(baseRes, res) {
			t.Fatalf("KV results diverged (%s):\nbase: %+v\ngot:  %+v", v.name, baseRes, res)
		}
	}
}

func TestDeterminismMaskingDowngrade(t *testing.T) {
	run := func(noFF, noEC bool) string {
		cfg := rcoe.Config{
			Mode:               rcoe.ModeLC,
			Replicas:           3,
			Masking:            true,
			TickCycles:         20_000,
			BarrierTimeout:     200_000,
			DisableFastForward: noFF,
			DisableExecCache:   noEC,
		}
		sys, err := rcoe.BuildSystem(cfg, rcoe.Dhrystone(20_000))
		if err != nil {
			t.Fatal(err)
		}
		sys.RunCycles(50_000)
		sys.InjectStall(2)
		if err := sys.Run(500_000_000); err != nil {
			t.Fatalf("run (noFF=%v noEC=%v): %v", noFF, noEC, err)
		}
		if len(sys.Detections()) == 0 {
			t.Fatalf("stall produced no detection (noFF=%v noEC=%v)", noFF, noEC)
		}
		return systemFingerprint(sys)
	}
	base := run(hostVariants[0].noFF, hostVariants[0].noEC)
	for _, v := range hostVariants[1:] {
		assertIdentical(t, "masking-downgrade/"+v.name, base, run(v.noFF, v.noEC))
	}
}

func TestDeterminismSoakCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("naive-mode soak is slow")
	}
	run := func(noFF, noEC bool) faults.SoakResult {
		res, err := rcoe.Soak(rcoe.SoakOptions{
			System: rcoe.Config{DisableFastForward: noFF, DisableExecCache: noEC},
			Cycles: 2,
			Seed:   5,
		})
		if err != nil {
			t.Fatalf("soak (noFF=%v noEC=%v): %v", noFF, noEC, err)
		}
		return res
	}
	base := run(hostVariants[0].noFF, hostVariants[0].noEC)
	for _, v := range hostVariants[1:] {
		got := run(v.noFF, v.noEC)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("soak campaigns diverged (%s):\nbase: cycles=%+v windows=%v ops=%d violations=%v\ngot:  cycles=%+v windows=%v ops=%d violations=%v",
				v.name, base.Cycles, base.Windows, base.Ops, base.Violations,
				got.Cycles, got.Windows, got.Ops, got.Violations)
		}
	}
}

// TestDeterminismFaultCampaigns runs shortened versions of the Table VII
// memory and Table VIII register fault-injection studies with the
// execution cache on and off. Fault injection exercises the invalidation
// protocol hardest — bit-flips land in live instruction bytes — so the
// tallies must be byte-identical across modes.
func TestDeterminismFaultCampaigns(t *testing.T) {
	memRun := func(noEC bool) *faults.Tally {
		tally, err := rcoe.MemCampaign(rcoe.MemCampaignOptions{
			KV: harness.KVOptions{
				System: rcoe.Config{
					Mode:             rcoe.ModeLC,
					Replicas:         3,
					TickCycles:       50_000,
					DisableExecCache: noEC,
				},
				Workload:   workload.YCSBA,
				Records:    20,
				Operations: 40,
				Seed:       7,
			},
			Trials:          6,
			FlipEveryCycles: 40_000,
			MaxFlips:        40,
			Seed:            21,
		})
		if err != nil {
			t.Fatalf("mem campaign (noEC=%v): %v", noEC, err)
		}
		return tally
	}
	if base, got := memRun(false), memRun(true); !reflect.DeepEqual(base, got) {
		t.Fatalf("mem campaign tallies diverged:\ncached: %+v\nnaive:  %+v", base, got)
	}

	regRun := func(noEC bool) faults.RegTally {
		tally, err := rcoe.RegCampaign(rcoe.RegCampaignOptions{
			System: rcoe.Config{
				Mode:             rcoe.ModeCC,
				Replicas:         2,
				TickCycles:       50_000,
				DisableExecCache: noEC,
			},
			MessageBytes: 512,
			Trials:       6,
			Seed:         33,
		})
		if err != nil {
			t.Fatalf("reg campaign (noEC=%v): %v", noEC, err)
		}
		return tally
	}
	if base, got := regRun(false), regRun(true); !reflect.DeepEqual(base, got) {
		t.Fatalf("reg campaign tallies diverged:\ncached: %+v\nnaive:  %+v", base, got)
	}
}

// TestDeterminismHardFaultMatrix runs one trial of every hard-fault class
// — stuck bits re-asserted on each access, duty-cycled intermittent
// faults, NIC DMA corruption — under the full {fast-forward × exec-cache}
// host matrix, with structural decorrelation both off and on. Stuck bits
// are the hardest case for the execution cache (they must stay visible
// without ever entering predecoded state), and intermittent faults toggle
// on machine-time phases the idle skip must not jump over; every variant
// must classify every trial identically.
func TestDeterminismHardFaultMatrix(t *testing.T) {
	for _, decorr := range []bool{false, true} {
		name := "correlated"
		if decorr {
			name = "decorrelated"
		}
		t.Run(name, func(t *testing.T) {
			run := func(noFF, noEC bool) map[rcoe.FaultClass]*faults.Tally {
				tallies, err := rcoe.HardCampaign(rcoe.HardCampaignOptions{
					KV: harness.KVOptions{
						System: rcoe.Config{
							Mode:               rcoe.ModeLC,
							Replicas:           3,
							Masking:            true,
							Decorrelate:        decorr,
							TickCycles:         50_000,
							DisableFastForward: noFF,
							DisableExecCache:   noEC,
						},
						Workload:   workload.YCSBA,
						Records:    20,
						Operations: 40,
					},
					TrialsPerClass: 1,
					Seed:           17,
				})
				if err != nil {
					t.Fatalf("hard campaign (noFF=%v noEC=%v): %v", noFF, noEC, err)
				}
				return tallies
			}
			base := run(hostVariants[0].noFF, hostVariants[0].noEC)
			for _, v := range hostVariants[1:] {
				if got := run(v.noFF, v.noEC); !reflect.DeepEqual(base, got) {
					t.Fatalf("hard-fault tallies diverged (%s):\nbase: %+v\ngot:  %+v",
						v.name, base, got)
				}
			}
		})
	}
}
