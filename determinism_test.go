package rcoe_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rcoe"
	"rcoe/internal/faults"
	"rcoe/internal/harness"
	"rcoe/internal/workload"
)

// These differential tests are the host-optimisation determinism
// contract: for every tier-1 scenario, a run with the event-driven idle
// skip, the execution cache (predecoded instructions + translation
// memos), and/or the superblock engine (batched straight-line execution)
// enabled must be bit-identical — final machine cycle, per-core counters
// and registers, kernel signatures, detections, stats, metrics — to the
// same run stepped naively cycle by cycle with every cache off. Any
// drift means an optimisation skipped or memoised something the naive
// loop would have observed differently.

// hostVariant is one corner of the {fast-forward × exec-cache ×
// superblock} accelerator cube.
type hostVariant struct {
	name             string
	noFF, noEC, noSB bool
}

func (v hostVariant) apply(cfg *rcoe.Config) {
	cfg.DisableFastForward = v.noFF
	cfg.DisableExecCache = v.noEC
	cfg.DisableSuperblock = v.noSB
}

// hostVariants enumerates all eight host-optimisation combinations each
// scenario runs under. The first entry is the baseline everything-on
// configuration the others are compared against.
var hostVariants = []hostVariant{
	{"all-on", false, false, false},
	{"no-fastforward", true, false, false},
	{"no-execcache", false, true, false},
	{"no-superblock", false, false, true},
	{"no-ff-no-ec", true, true, false},
	{"no-ff-no-sb", true, false, true},
	{"no-ec-no-sb", false, true, true},
	{"naive", true, true, true},
}

// systemFingerprint renders everything observable about a finished system
// into a canonical string, so differences show up as a readable diff.
func systemFingerprint(sys *rcoe.System) string {
	var sb strings.Builder
	m := sys.Machine()
	halted, reason := sys.Halted()
	fmt.Fprintf(&sb, "now=%d finished=%v halted=%v reason=%q\n",
		m.Now(), sys.Finished(), halted, reason)
	for i := 0; i < sys.NumReplicas(); i++ {
		c := m.Core(i)
		var regs uint64
		for _, r := range c.Regs {
			regs = regs*0x100000001b3 ^ r
		}
		ev, sum := sys.Replica(i).K.Signature()
		fmt.Fprintf(&sb, "core%d state=%d cycles=%d instr=%d branches=%d pc=%#x regs=%#x sig=(%d,%#x)\n",
			i, c.State, c.Cycles, c.Instructions, c.UserBranches, c.PC, regs, ev, sum)
	}
	fmt.Fprintf(&sb, "stats=%+v\n", sys.Stats())
	for _, d := range sys.Detections() {
		fmt.Fprintf(&sb, "detection=%+v\n", d)
	}
	if sys.Metrics() != nil {
		sb.WriteString(sys.MetricsSnapshot().Table("metrics"))
	}
	return sb.String()
}

// diffLine reports the first line two fingerprints disagree on.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  fast:  %s\n  naive: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

func assertIdentical(t *testing.T, name, fast, slow string) {
	t.Helper()
	if fast != slow {
		t.Fatalf("%s: fast-forward run diverged from naive run\n%s", name, diffLine(fast, slow))
	}
}

func TestDeterminismTable2Kernels(t *testing.T) {
	configs := []struct {
		name string
		cfg  rcoe.Config
	}{
		{"base", rcoe.Config{Mode: rcoe.ModeNone, Replicas: 1, TickCycles: 20_000}},
		{"lc-dmr", rcoe.Config{Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 20_000}},
		{"lc-tmr", rcoe.Config{Mode: rcoe.ModeLC, Replicas: 3, TickCycles: 20_000}},
		{"cc-dmr", rcoe.Config{Mode: rcoe.ModeCC, Replicas: 2, TickCycles: 20_000}},
	}
	programs := []struct {
		name string
		prog rcoe.Program
	}{
		{"dhrystone", rcoe.Dhrystone(300)},
		{"whetstone", rcoe.Whetstone(30)},
	}
	for _, p := range programs {
		for _, c := range configs {
			t.Run(p.name+"/"+c.name, func(t *testing.T) {
				run := func(v hostVariant) string {
					cfg := c.cfg
					v.apply(&cfg)
					sys, err := rcoe.BuildSystem(cfg, p.prog)
					if err != nil {
						t.Fatal(err)
					}
					if err := sys.Run(500_000_000); err != nil {
						t.Fatalf("run (%s): %v", v.name, err)
					}
					return systemFingerprint(sys)
				}
				base := run(hostVariants[0])
				for _, v := range hostVariants[1:] {
					assertIdentical(t, p.name+"/"+c.name+"/"+v.name, base, run(v))
				}
			})
		}
	}
}

func TestDeterminismKVUnderYCSB(t *testing.T) {
	run := func(v hostVariant) (harness.KVResult, string) {
		cfg := rcoe.Config{
			Mode:       rcoe.ModeLC,
			Replicas:   3,
			TickCycles: 50_000,
			Trace:      rcoe.TraceConfig{Enabled: true},
		}
		v.apply(&cfg)
		opts := harness.KVOptions{
			System:     cfg,
			Workload:   workload.YCSBA,
			Records:    40,
			Operations: 80,
			Seed:       11,
		}
		kv, err := harness.NewKV(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := kv.Run()
		if err != nil {
			t.Fatalf("kv run (%s): %v", v.name, err)
		}
		return res, systemFingerprint(kv.Sys)
	}
	baseRes, baseFP := run(hostVariants[0])
	for _, v := range hostVariants[1:] {
		res, fp := run(v)
		assertIdentical(t, "kv-ycsba/"+v.name, baseFP, fp)
		if !reflect.DeepEqual(baseRes, res) {
			t.Fatalf("KV results diverged (%s):\nbase: %+v\ngot:  %+v", v.name, baseRes, res)
		}
	}
}

func TestDeterminismMaskingDowngrade(t *testing.T) {
	run := func(v hostVariant) string {
		cfg := rcoe.Config{
			Mode:           rcoe.ModeLC,
			Replicas:       3,
			Masking:        true,
			TickCycles:     20_000,
			BarrierTimeout: 200_000,
		}
		v.apply(&cfg)
		sys, err := rcoe.BuildSystem(cfg, rcoe.Dhrystone(20_000))
		if err != nil {
			t.Fatal(err)
		}
		sys.RunCycles(50_000)
		sys.InjectStall(2)
		if err := sys.Run(500_000_000); err != nil {
			t.Fatalf("run (%s): %v", v.name, err)
		}
		if len(sys.Detections()) == 0 {
			t.Fatalf("stall produced no detection (%s)", v.name)
		}
		return systemFingerprint(sys)
	}
	base := run(hostVariants[0])
	for _, v := range hostVariants[1:] {
		assertIdentical(t, "masking-downgrade/"+v.name, base, run(v))
	}
}

func TestDeterminismSoakCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("naive-mode soak is slow")
	}
	run := func(v hostVariant) faults.SoakResult {
		var cfg rcoe.Config
		v.apply(&cfg)
		res, err := rcoe.Soak(rcoe.SoakOptions{
			System: cfg,
			Cycles: 2,
			Seed:   5,
		})
		if err != nil {
			t.Fatalf("soak (%s): %v", v.name, err)
		}
		return res
	}
	base := run(hostVariants[0])
	for _, v := range hostVariants[1:] {
		got := run(v)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("soak campaigns diverged (%s):\nbase: cycles=%+v windows=%v ops=%d violations=%v\ngot:  cycles=%+v windows=%v ops=%d violations=%v",
				v.name, base.Cycles, base.Windows, base.Ops, base.Violations,
				got.Cycles, got.Windows, got.Ops, got.Violations)
		}
	}
}

// TestDeterminismFaultCampaigns runs shortened versions of the Table VII
// memory and Table VIII register fault-injection studies with the
// execution cache and the superblock engine toggled. Fault injection
// exercises the invalidation protocols hardest — bit-flips land in live
// instruction bytes, sometimes under a cached superblock mid-batch — so
// the tallies must be byte-identical across modes.
func TestDeterminismFaultCampaigns(t *testing.T) {
	memRun := func(noEC, noSB bool) *faults.Tally {
		tally, err := rcoe.MemCampaign(rcoe.MemCampaignOptions{
			KV: harness.KVOptions{
				System: rcoe.Config{
					Mode:              rcoe.ModeLC,
					Replicas:          3,
					TickCycles:        50_000,
					DisableExecCache:  noEC,
					DisableSuperblock: noSB,
				},
				Workload:   workload.YCSBA,
				Records:    20,
				Operations: 40,
				Seed:       7,
			},
			Trials:          6,
			FlipEveryCycles: 40_000,
			MaxFlips:        40,
			Seed:            21,
		})
		if err != nil {
			t.Fatalf("mem campaign (noEC=%v noSB=%v): %v", noEC, noSB, err)
		}
		return tally
	}
	memBase := memRun(false, false)
	if got := memRun(true, false); !reflect.DeepEqual(memBase, got) {
		t.Fatalf("mem campaign tallies diverged (no-execcache):\ncached: %+v\nnaive:  %+v", memBase, got)
	}
	if got := memRun(false, true); !reflect.DeepEqual(memBase, got) {
		t.Fatalf("mem campaign tallies diverged (no-superblock):\nbatched: %+v\nstepped: %+v", memBase, got)
	}

	regRun := func(noEC, noSB bool) faults.RegTally {
		tally, err := rcoe.RegCampaign(rcoe.RegCampaignOptions{
			System: rcoe.Config{
				Mode:              rcoe.ModeCC,
				Replicas:          2,
				TickCycles:        50_000,
				DisableExecCache:  noEC,
				DisableSuperblock: noSB,
			},
			MessageBytes: 512,
			Trials:       6,
			Seed:         33,
		})
		if err != nil {
			t.Fatalf("reg campaign (noEC=%v noSB=%v): %v", noEC, noSB, err)
		}
		return tally
	}
	regBase := regRun(false, false)
	if got := regRun(true, false); !reflect.DeepEqual(regBase, got) {
		t.Fatalf("reg campaign tallies diverged (no-execcache):\ncached: %+v\nnaive:  %+v", regBase, got)
	}
	if got := regRun(false, true); !reflect.DeepEqual(regBase, got) {
		t.Fatalf("reg campaign tallies diverged (no-superblock):\nbatched: %+v\nstepped: %+v", regBase, got)
	}
}

// TestDeterminismHardFaultMatrix runs one trial of every hard-fault class
// — stuck bits re-asserted on each access, duty-cycled intermittent
// faults, NIC DMA corruption — under the full {fast-forward × exec-cache}
// host matrix, with structural decorrelation both off and on. Stuck bits
// are the hardest case for the execution cache (they must stay visible
// without ever entering predecoded state), and intermittent faults toggle
// on machine-time phases the idle skip must not jump over; every variant
// must classify every trial identically.
func TestDeterminismHardFaultMatrix(t *testing.T) {
	for _, decorr := range []bool{false, true} {
		name := "correlated"
		if decorr {
			name = "decorrelated"
		}
		t.Run(name, func(t *testing.T) {
			run := func(v hostVariant) map[rcoe.FaultClass]*faults.Tally {
				cfg := rcoe.Config{
					Mode:        rcoe.ModeLC,
					Replicas:    3,
					Masking:     true,
					Decorrelate: decorr,
					TickCycles:  50_000,
				}
				v.apply(&cfg)
				tallies, err := rcoe.HardCampaign(rcoe.HardCampaignOptions{
					KV: harness.KVOptions{
						System:     cfg,
						Workload:   workload.YCSBA,
						Records:    20,
						Operations: 40,
					},
					TrialsPerClass: 1,
					Seed:           17,
				})
				if err != nil {
					t.Fatalf("hard campaign (%s): %v", v.name, err)
				}
				return tallies
			}
			base := run(hostVariants[0])
			for _, v := range hostVariants[1:] {
				if got := run(v); !reflect.DeepEqual(base, got) {
					t.Fatalf("hard-fault tallies diverged (%s):\nbase: %+v\ngot:  %+v",
						v.name, base, got)
				}
			}
		})
	}
}
