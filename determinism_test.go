package rcoe_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rcoe"
	"rcoe/internal/faults"
	"rcoe/internal/harness"
	"rcoe/internal/workload"
)

// These differential tests are the fast-forward determinism contract: for
// every tier-1 scenario, a run with the event-driven idle skip enabled
// must be bit-identical — final machine cycle, per-core counters and
// registers, kernel signatures, detections, stats, metrics — to the same
// run stepped naively cycle by cycle. Any drift here means fast-forward
// jumped over something the naive loop would have observed.

// systemFingerprint renders everything observable about a finished system
// into a canonical string, so differences show up as a readable diff.
func systemFingerprint(sys *rcoe.System) string {
	var sb strings.Builder
	m := sys.Machine()
	halted, reason := sys.Halted()
	fmt.Fprintf(&sb, "now=%d finished=%v halted=%v reason=%q\n",
		m.Now(), sys.Finished(), halted, reason)
	for i := 0; i < sys.NumReplicas(); i++ {
		c := m.Core(i)
		var regs uint64
		for _, r := range c.Regs {
			regs = regs*0x100000001b3 ^ r
		}
		ev, sum := sys.Replica(i).K.Signature()
		fmt.Fprintf(&sb, "core%d state=%d cycles=%d instr=%d branches=%d pc=%#x regs=%#x sig=(%d,%#x)\n",
			i, c.State, c.Cycles, c.Instructions, c.UserBranches, c.PC, regs, ev, sum)
	}
	fmt.Fprintf(&sb, "stats=%+v\n", sys.Stats())
	for _, d := range sys.Detections() {
		fmt.Fprintf(&sb, "detection=%+v\n", d)
	}
	if sys.Metrics() != nil {
		sb.WriteString(sys.MetricsSnapshot().Table("metrics"))
	}
	return sb.String()
}

// diffLine reports the first line two fingerprints disagree on.
func diffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  fast:  %s\n  naive: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

func assertIdentical(t *testing.T, name, fast, slow string) {
	t.Helper()
	if fast != slow {
		t.Fatalf("%s: fast-forward run diverged from naive run\n%s", name, diffLine(fast, slow))
	}
}

func TestDeterminismTable2Kernels(t *testing.T) {
	configs := []struct {
		name string
		cfg  rcoe.Config
	}{
		{"base", rcoe.Config{Mode: rcoe.ModeNone, Replicas: 1, TickCycles: 20_000}},
		{"lc-dmr", rcoe.Config{Mode: rcoe.ModeLC, Replicas: 2, TickCycles: 20_000}},
		{"lc-tmr", rcoe.Config{Mode: rcoe.ModeLC, Replicas: 3, TickCycles: 20_000}},
		{"cc-dmr", rcoe.Config{Mode: rcoe.ModeCC, Replicas: 2, TickCycles: 20_000}},
	}
	programs := []struct {
		name string
		prog rcoe.Program
	}{
		{"dhrystone", rcoe.Dhrystone(300)},
		{"whetstone", rcoe.Whetstone(30)},
	}
	for _, p := range programs {
		for _, c := range configs {
			t.Run(p.name+"/"+c.name, func(t *testing.T) {
				run := func(disableFF bool) string {
					cfg := c.cfg
					cfg.DisableFastForward = disableFF
					sys, err := rcoe.BuildSystem(cfg, p.prog)
					if err != nil {
						t.Fatal(err)
					}
					if err := sys.Run(500_000_000); err != nil {
						t.Fatalf("run (ffDisabled=%v): %v", disableFF, err)
					}
					return systemFingerprint(sys)
				}
				assertIdentical(t, p.name+"/"+c.name, run(false), run(true))
			})
		}
	}
}

func TestDeterminismKVUnderYCSB(t *testing.T) {
	run := func(disableFF bool) (harness.KVResult, string) {
		opts := harness.KVOptions{
			System: rcoe.Config{
				Mode:               rcoe.ModeLC,
				Replicas:           3,
				TickCycles:         50_000,
				DisableFastForward: disableFF,
				Trace:              rcoe.TraceConfig{Enabled: true},
			},
			Workload:   workload.YCSBA,
			Records:    40,
			Operations: 80,
			Seed:       11,
		}
		kv, err := harness.NewKV(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := kv.Run()
		if err != nil {
			t.Fatalf("kv run (ffDisabled=%v): %v", disableFF, err)
		}
		return res, systemFingerprint(kv.Sys)
	}
	fastRes, fastFP := run(false)
	slowRes, slowFP := run(true)
	assertIdentical(t, "kv-ycsba", fastFP, slowFP)
	if !reflect.DeepEqual(fastRes, slowRes) {
		t.Fatalf("KV results diverged:\nfast:  %+v\nnaive: %+v", fastRes, slowRes)
	}
}

func TestDeterminismMaskingDowngrade(t *testing.T) {
	run := func(disableFF bool) string {
		cfg := rcoe.Config{
			Mode:               rcoe.ModeLC,
			Replicas:           3,
			Masking:            true,
			TickCycles:         20_000,
			BarrierTimeout:     200_000,
			DisableFastForward: disableFF,
		}
		sys, err := rcoe.BuildSystem(cfg, rcoe.Dhrystone(20_000))
		if err != nil {
			t.Fatal(err)
		}
		sys.RunCycles(50_000)
		sys.InjectStall(2)
		if err := sys.Run(500_000_000); err != nil {
			t.Fatalf("run (ffDisabled=%v): %v", disableFF, err)
		}
		if len(sys.Detections()) == 0 {
			t.Fatalf("stall produced no detection (ffDisabled=%v)", disableFF)
		}
		return systemFingerprint(sys)
	}
	assertIdentical(t, "masking-downgrade", run(false), run(true))
}

func TestDeterminismSoakCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("naive-mode soak is slow")
	}
	run := func(disableFF bool) faults.SoakResult {
		res, err := rcoe.Soak(rcoe.SoakOptions{
			System: rcoe.Config{DisableFastForward: disableFF},
			Cycles: 2,
			Seed:   5,
		})
		if err != nil {
			t.Fatalf("soak (ffDisabled=%v): %v", disableFF, err)
		}
		return res
	}
	fast, slow := run(false), run(true)
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("soak campaigns diverged:\nfast:  cycles=%+v windows=%v ops=%d violations=%v\nnaive: cycles=%+v windows=%v ops=%d violations=%v",
			fast.Cycles, fast.Windows, fast.Ops, fast.Violations,
			slow.Cycles, slow.Windows, slow.Ops, slow.Violations)
	}
}
